use serde::{Deserialize, Serialize};

/// Result of a search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Best feasible genome and its cost, if any feasible point was found
    /// (the paper prints `NAN` when a method never satisfies the
    /// constraint within the budget).
    pub best: Option<(Vec<usize>, f64)>,
    /// Best-so-far cost after each evaluation; `f64::INFINITY` while no
    /// feasible point has been seen. Used for the convergence plots
    /// (Figs. 7 and 9).
    pub trace: Vec<f64>,
    /// Evaluations actually spent.
    pub evaluations: usize,
}

impl SearchOutcome {
    /// An outcome accumulator.
    pub fn new() -> Self {
        SearchOutcome {
            best: None,
            trace: Vec::new(),
            evaluations: 0,
        }
    }

    /// Records one evaluation (`None` = infeasible genome). A NaN cost is
    /// treated as non-improving: it can never become `best`, even when no
    /// feasible point has been seen yet.
    pub fn record(&mut self, genome: &[usize], cost: Option<f64>) {
        self.evaluations += 1;
        if let Some(c) = cost {
            let improved = !c.is_nan() && self.best.as_ref().is_none_or(|(_, b)| c < *b);
            if improved {
                self.best = Some((genome.to_vec(), c));
            }
        }
        self.trace
            .push(self.best.as_ref().map_or(f64::INFINITY, |(_, b)| *b));
    }

    /// Best cost if a feasible point was found.
    pub fn best_cost(&self) -> Option<f64> {
        self.best.as_ref().map(|(_, c)| *c)
    }

    /// Number of evaluations until the cost first dropped within `factor`
    /// of the final best (a simple convergence-speed metric for Table V).
    pub fn evals_to_within(&self, factor: f64) -> Option<usize> {
        let target = self.best_cost()? * factor;
        self.trace.iter().position(|&c| c <= target).map(|i| i + 1)
    }
}

impl Default for SearchOutcome {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_running_best() {
        let mut o = SearchOutcome::new();
        o.record(&[0], None);
        assert_eq!(o.trace, vec![f64::INFINITY]);
        o.record(&[1], Some(10.0));
        o.record(&[2], Some(20.0)); // worse, best unchanged
        o.record(&[3], Some(5.0));
        assert_eq!(o.best_cost(), Some(5.0));
        assert_eq!(o.trace, vec![f64::INFINITY, 10.0, 10.0, 5.0]);
        assert_eq!(o.best.as_ref().unwrap().0, vec![3]);
        assert_eq!(o.evaluations, 4);
    }

    #[test]
    fn evals_to_within_finds_first_crossing() {
        let mut o = SearchOutcome::new();
        o.record(&[0], Some(100.0));
        o.record(&[1], Some(12.0));
        o.record(&[2], Some(10.0));
        assert_eq!(o.evals_to_within(1.25), Some(2)); // 12 <= 10*1.25
        assert_eq!(o.evals_to_within(1.0), Some(3));
    }

    #[test]
    fn empty_outcome_has_no_best() {
        let o = SearchOutcome::new();
        assert_eq!(o.best_cost(), None);
        assert_eq!(o.evals_to_within(1.0), None);
    }
}
