//! # opt-methods — classical design-space-exploration baselines
//!
//! The non-RL optimization methods ConfuciuX is compared against (§II-E,
//! §IV-A3): grid search, random search, simulated annealing, a generic
//! genetic algorithm, and Bayesian optimization with a Gaussian-process
//! surrogate — plus the paper's own specialized **local GA** used as the
//! second-stage fine-tuner (§III-G).
//!
//! All methods minimize a black-box objective over a discrete space and
//! are budgeted in *evaluations* so they can be compared head-to-head with
//! the RL agents' epoch budgets.
//!
//! ```
//! use opt_methods::{RandomSearch, SearchSpace, Optimizer};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::uniform(4, 5); // 4 genes, 5 levels each
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // Minimize the sum of levels; optimum is all zeros.
//! let outcome = RandomSearch::default().run(
//!     &space, 200,
//!     |g| Some(g.iter().sum::<usize>() as f64),
//!     &mut rng);
//! assert!(outcome.best.unwrap().1 <= 2.0); // near the all-zero optimum
//! ```

mod anneal;
mod bayesian;
mod genetic;
mod grid;
mod local_ga;
mod outcome;
mod random;
mod space;

pub use anneal::SimulatedAnnealing;
pub use bayesian::BayesianOpt;
pub use genetic::GeneticAlgorithm;
pub use grid::GridSearch;
pub use local_ga::{
    FineCursor, FineCursorState, FineOutcome, FineOutcomeState, FineSpace, LocalGa, LocalGaConfig,
};
pub use outcome::SearchOutcome;
pub use random::RandomSearch;
pub use space::SearchSpace;

/// The RNG type shared by all optimizers.
pub type Rng = rand::rngs::StdRng;

/// Total order on optional candidate costs: finite costs ascend via
/// [`f64::total_cmp`], any NaN cost ranks strictly worse than every finite
/// cost, and `None` (infeasible) ranks worst of all. A NaN leaking out of a
/// cost model demotes that candidate instead of panicking the search the
/// way `partial_cmp(..).expect("finite costs")` used to.
pub fn cost_order(a: Option<f64>, b: Option<f64>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Some(x), Some(y)) => match (x.is_nan(), y.is_nan()) {
            (false, false) => x.total_cmp(&y),
            (false, true) => Ordering::Less,
            (true, false) => Ordering::Greater,
            (true, true) => Ordering::Equal,
        },
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

/// Cap on how many genomes an optimizer queues up before flushing them to
/// the evaluator: big enough to saturate a worker pool, small enough to
/// bound per-generation memory.
pub const EVAL_BATCH: usize = 256;

/// A batched black-box objective over genomes with gene type `G`.
///
/// Entry `i` of the result answers `genomes[i]`; `None` marks a
/// constraint-violating genome. Implementations backed by a parallel
/// evaluation engine (the `EvalEngine` in the `maestro` crate) must return
/// results bit-identical to evaluating each genome alone, in order — the
/// optimizers rely on that to stay deterministic under any thread count.
pub trait BatchEval<G> {
    /// Evaluates a batch of genomes.
    fn eval_batch(&mut self, genomes: &[Vec<G>]) -> Vec<Option<f64>>;
}

/// Adapter running a per-genome closure serially, so every [`Optimizer`]
/// keeps accepting plain closures through [`Optimizer::run`].
pub struct SerialEval<F>(pub F);

impl<G, F: FnMut(&[G]) -> Option<f64>> BatchEval<G> for SerialEval<F> {
    fn eval_batch(&mut self, genomes: &[Vec<G>]) -> Vec<Option<f64>> {
        genomes.iter().map(|g| (self.0)(g)).collect()
    }
}

/// A black-box minimizer over a discrete [`SearchSpace`].
///
/// The evaluator returns `Some(cost)` for feasible genomes and `None` for
/// genomes violating the platform constraint; optimizers must survive long
/// runs of infeasible evaluations (tight-constraint regimes in Table IV).
///
/// [`Optimizer::run_batch`] is the primary entry point: population methods
/// (GA) and enumeration methods (grid, random) hand whole generations to
/// the evaluator so a parallel backend can price them concurrently.
/// Inherently sequential methods (SA, BO) degrade to singleton batches.
/// Both entry points produce bit-identical [`SearchOutcome`]s: genomes are
/// generated in the same RNG order and recorded in submission order, and
/// evaluation itself never consumes randomness.
pub trait Optimizer {
    /// Runs the search for exactly `budget` objective evaluations, handing
    /// the evaluator the largest genome batches the method permits.
    fn run_batch(
        &self,
        space: &SearchSpace,
        budget: usize,
        eval: &mut dyn BatchEval<usize>,
        rng: &mut Rng,
    ) -> SearchOutcome;

    /// Runs the search with a serial per-genome closure.
    fn run(
        &self,
        space: &SearchSpace,
        budget: usize,
        eval: impl FnMut(&[usize]) -> Option<f64>,
        rng: &mut Rng,
    ) -> SearchOutcome
    where
        Self: Sized,
    {
        self.run_batch(space, budget, &mut SerialEval(eval), rng)
    }

    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Every baseline must find the optimum of a trivially separable
    /// objective within a modest budget.
    #[test]
    fn all_optimizers_solve_separable_objective() {
        let space = SearchSpace::uniform(3, 6);
        let eval = |g: &[usize]| Some(g.iter().map(|&v| (v as f64 - 2.0).powi(2)).sum::<f64>());
        type Runner<'a> = Box<dyn Fn(&mut Rng) -> SearchOutcome + 'a>;
        let opts: Vec<(Runner, &str)> = vec![
            (
                Box::new(|rng: &mut Rng| RandomSearch.run(&space, 600, eval, rng)),
                "random",
            ),
            (
                Box::new(|rng: &mut Rng| GridSearch::new(1).run(&space, 600, eval, rng)),
                "grid",
            ),
            (
                Box::new(|rng: &mut Rng| SimulatedAnnealing::default().run(&space, 600, eval, rng)),
                "sa",
            ),
            (
                Box::new(|rng: &mut Rng| GeneticAlgorithm::default().run(&space, 600, eval, rng)),
                "ga",
            ),
            (
                Box::new(|rng: &mut Rng| BayesianOpt::default().run(&space, 150, eval, rng)),
                "bo",
            ),
        ];
        for (run, name) in opts {
            let mut rng = Rng::seed_from_u64(123);
            let outcome = run(&mut rng);
            let (genome, cost) = outcome.best.expect(name);
            assert_eq!(cost, 0.0, "{name} reached {cost} at {genome:?}");
        }
    }

    /// With a constraint that rejects most of the space, optimizers must
    /// still report feasible bests (or a well-formed empty outcome).
    #[test]
    fn optimizers_respect_infeasibility() {
        let space = SearchSpace::uniform(2, 10);
        // Feasible only when the sum is under 4.
        let eval = |g: &[usize]| {
            let s: usize = g.iter().sum();
            if s < 4 {
                Some(100.0 - s as f64)
            } else {
                None
            }
        };
        let mut rng = Rng::seed_from_u64(7);
        for outcome in [
            RandomSearch.run(&space, 300, eval, &mut rng),
            SimulatedAnnealing::default().run(&space, 300, eval, &mut rng),
            GeneticAlgorithm::default().run(&space, 300, eval, &mut rng),
        ] {
            if let Some((genome, cost)) = outcome.best {
                assert!(genome.iter().sum::<usize>() < 4);
                assert!(cost <= 100.0);
            }
        }
    }
}
