use crate::{Optimizer, Rng, SearchOutcome, SearchSpace};

/// Uniform random search: sample `budget` genomes and keep the best
/// feasible one (§II-E; Bergstra & Bengio, 2012).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomSearch;

impl Optimizer for RandomSearch {
    fn run(
        &self,
        space: &SearchSpace,
        budget: usize,
        mut eval: impl FnMut(&[usize]) -> Option<f64>,
        rng: &mut Rng,
    ) -> SearchOutcome {
        let mut outcome = SearchOutcome::new();
        for _ in 0..budget {
            let genome = space.sample(rng);
            let cost = eval(&genome);
            outcome.record(&genome, cost);
        }
        outcome
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spends_exactly_the_budget() {
        let space = SearchSpace::uniform(3, 4);
        let mut rng = Rng::seed_from_u64(1);
        let mut calls = 0;
        let outcome = RandomSearch.run(
            &space,
            57,
            |_| {
                calls += 1;
                Some(1.0)
            },
            &mut rng,
        );
        assert_eq!(calls, 57);
        assert_eq!(outcome.evaluations, 57);
    }

    #[test]
    fn reports_none_when_everything_infeasible() {
        let space = SearchSpace::uniform(2, 3);
        let mut rng = Rng::seed_from_u64(2);
        let outcome = RandomSearch.run(&space, 50, |_| None, &mut rng);
        assert!(outcome.best.is_none());
        assert!(outcome.trace.iter().all(|c| c.is_infinite()));
    }
}
