use crate::{BatchEval, Optimizer, Rng, SearchOutcome, SearchSpace, EVAL_BATCH};

/// Uniform random search: sample `budget` genomes and keep the best
/// feasible one (§II-E; Bergstra & Bengio, 2012).
///
/// Samples are independent, so the whole budget batches trivially: genomes
/// are drawn in chunks of [`EVAL_BATCH`] and priced together. Sampling
/// happens before evaluation within each chunk, but evaluation consumes no
/// randomness, so the RNG stream — and the recorded outcome — is identical
/// to the serial one-at-a-time loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomSearch;

impl Optimizer for RandomSearch {
    fn run_batch(
        &self,
        space: &SearchSpace,
        budget: usize,
        eval: &mut dyn BatchEval<usize>,
        rng: &mut Rng,
    ) -> SearchOutcome {
        let mut outcome = SearchOutcome::new();
        while outcome.evaluations < budget {
            let chunk = (budget - outcome.evaluations).min(EVAL_BATCH);
            let genomes: Vec<Vec<usize>> = (0..chunk).map(|_| space.sample(rng)).collect();
            let costs = eval.eval_batch(&genomes);
            for (genome, cost) in genomes.iter().zip(costs) {
                outcome.record(genome, cost);
            }
        }
        outcome
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spends_exactly_the_budget() {
        let space = SearchSpace::uniform(3, 4);
        let mut rng = Rng::seed_from_u64(1);
        let mut calls = 0;
        let outcome = RandomSearch.run(
            &space,
            57,
            |_| {
                calls += 1;
                Some(1.0)
            },
            &mut rng,
        );
        assert_eq!(calls, 57);
        assert_eq!(outcome.evaluations, 57);
    }

    #[test]
    fn reports_none_when_everything_infeasible() {
        let space = SearchSpace::uniform(2, 3);
        let mut rng = Rng::seed_from_u64(2);
        let outcome = RandomSearch.run(&space, 50, |_| None, &mut rng);
        assert!(outcome.best.is_none());
        assert!(outcome.trace.iter().all(|c| c.is_infinite()));
    }
}
