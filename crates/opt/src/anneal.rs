use rand::Rng as _;

use crate::{BatchEval, Optimizer, Rng, SearchOutcome, SearchSpace};

/// Simulated annealing on the discrete integer space (§IV-A3: temperature
/// 10, step size 1), with geometric cooling.
///
/// Each proposal depends on the accept/reject of the previous one, so SA
/// is inherently sequential: it degrades to singleton batches (still
/// served from the evaluation cache, just never fanned out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    /// Initial temperature.
    pub temperature: f64,
    /// Per-gene mutation step (± up to this many levels).
    pub step: usize,
    /// Multiplicative cooling applied every evaluation.
    pub cooling: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            temperature: 10.0,
            step: 1,
            cooling: 0.999,
        }
    }
}

impl SimulatedAnnealing {
    fn neighbor(&self, genome: &[usize], space: &SearchSpace, rng: &mut Rng) -> Vec<usize> {
        let mut next = genome.to_vec();
        let i = rng.gen_range(0..genome.len());
        let delta = rng.gen_range(1..=self.step) as isize;
        let sign = if rng.gen_bool(0.5) { 1 } else { -1 };
        let v = next[i] as isize + sign * delta;
        next[i] = v.clamp(0, space.cardinality(i) as isize - 1) as usize;
        next
    }
}

impl Optimizer for SimulatedAnnealing {
    fn run_batch(
        &self,
        space: &SearchSpace,
        budget: usize,
        eval: &mut dyn BatchEval<usize>,
        rng: &mut Rng,
    ) -> SearchOutcome {
        let mut eval1 = |g: &Vec<usize>| {
            eval.eval_batch(std::slice::from_ref(g))
                .pop()
                .expect("one genome in, one cost out")
        };
        let mut outcome = SearchOutcome::new();
        let mut current = space.sample(rng);
        let mut current_cost = eval1(&current);
        outcome.record(&current, current_cost);
        let mut temp = self.temperature;
        for _ in 1..budget {
            let cand = self.neighbor(&current, space, rng);
            let cand_cost = eval1(&cand);
            outcome.record(&cand, cand_cost);
            let accept = match (current_cost, cand_cost) {
                // Infeasible -> feasible is always an improvement.
                (None, Some(_)) => true,
                (None, None) => rng.gen_bool(0.5),
                (Some(_), None) => false,
                (Some(c), Some(n)) => {
                    if n <= c {
                        true
                    } else {
                        // Scale-free acceptance: relative worsening.
                        let rel = (n - c) / c.abs().max(1e-12);
                        let p = (-rel / (temp.max(1e-9) * 0.1)).exp();
                        rng.gen_bool(p.clamp(0.0, 1.0))
                    }
                }
            };
            if accept {
                current = cand;
                current_cost = cand_cost;
            }
            temp *= self.cooling;
        }
        outcome
    }

    fn name(&self) -> &'static str {
        "SA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn converges_on_smooth_objective() {
        let space = SearchSpace::uniform(4, 16);
        let mut rng = Rng::seed_from_u64(11);
        let outcome = SimulatedAnnealing::default().run(
            &space,
            2_000,
            |g| Some(g.iter().map(|&v| (v as f64 - 7.0).powi(2)).sum()),
            &mut rng,
        );
        assert!(outcome.best_cost().unwrap() <= 2.0);
    }

    #[test]
    fn neighbors_stay_in_bounds() {
        let space = SearchSpace::uniform(2, 3);
        let sa = SimulatedAnnealing {
            step: 5,
            ..SimulatedAnnealing::default()
        };
        let mut rng = Rng::seed_from_u64(12);
        let g = vec![0, 2];
        for _ in 0..100 {
            let n = sa.neighbor(&g, &space, &mut rng);
            assert!(space.contains(&n), "{n:?}");
        }
    }

    #[test]
    fn escapes_infeasible_start() {
        // Feasible region is a single point; SA must be able to walk there.
        let space = SearchSpace::uniform(1, 8);
        let mut rng = Rng::seed_from_u64(13);
        let outcome = SimulatedAnnealing::default().run(
            &space,
            500,
            |g| if g[0] == 3 { Some(1.0) } else { None },
            &mut rng,
        );
        assert_eq!(outcome.best_cost(), Some(1.0));
    }
}
