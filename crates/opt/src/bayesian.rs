use rand::Rng as _;

use crate::{BatchEval, Optimizer, Rng, SearchOutcome, SearchSpace};

/// Bayesian optimization with a Gaussian-process surrogate (RBF kernel)
/// and expected-improvement acquisition, adapted to the discrete integer
/// space (§II-E, §IV-A3).
///
/// To keep the cubic GP cost bounded on long runs, the surrogate is fit on
/// a window of the most recent + best observations (`max_train`), a
/// standard sparsification; the paper's qualitative behaviour (sample-
/// efficient early, struggles under tight constraints) is preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesianOpt {
    /// Kernel length-scale on the normalized [0,1]^n genome.
    pub length_scale: f64,
    /// Observation noise added to the kernel diagonal.
    pub noise: f64,
    /// Random candidates scored by EI per iteration.
    pub candidates: usize,
    /// Maximum training points kept for the GP fit.
    pub max_train: usize,
    /// Random genomes evaluated before the first GP fit.
    pub warmup: usize,
    /// Penalized cost assigned to infeasible observations so the GP
    /// learns to avoid the violating region.
    pub infeasible_quantile: f64,
}

impl Default for BayesianOpt {
    fn default() -> Self {
        BayesianOpt {
            length_scale: 0.35,
            noise: 1e-4,
            candidates: 256,
            max_train: 200,
            warmup: 16,
            infeasible_quantile: 2.0,
        }
    }
}

struct Gp {
    train_x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Vec<Vec<f64>>,
    length_scale: f64,
}

fn rbf(a: &[f64], b: &[f64], ls: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (-d2 / (2.0 * ls * ls)).exp()
}

/// Dense Cholesky factorization (lower-triangular); panics only if the
/// kernel matrix is not positive definite, which the jitter prevents.
fn cholesky(mut a: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let n = a.len();
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for (x, y) in a[i].iter().zip(a[j].iter()).take(j) {
                sum -= x * y;
            }
            if i == j {
                a[i][j] = sum.max(1e-12).sqrt();
            } else {
                a[i][j] = sum / a[j][j];
            }
        }
        a[i][i + 1..].fill(0.0);
    }
    a
}

fn solve_lower(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[i][j] * x[j];
        }
        x[i] = sum / l[i][i];
    }
    x
}

fn solve_upper_t(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    // Solves Lᵀ x = b given lower-triangular L.
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in (i + 1)..n {
            sum -= l[j][i] * x[j];
        }
        x[i] = sum / l[i][i];
    }
    x
}

impl Gp {
    fn fit(train_x: Vec<Vec<f64>>, train_y: &[f64], ls: f64, noise: f64) -> Gp {
        let n = train_x.len();
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                k[i][j] = rbf(&train_x[i], &train_x[j], ls);
            }
            k[i][i] += noise + 1e-8;
        }
        let chol = cholesky(k);
        let tmp = solve_lower(&chol, train_y);
        let alpha = solve_upper_t(&chol, &tmp);
        Gp {
            train_x,
            alpha,
            chol,
            length_scale: ls,
        }
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self
            .train_x
            .iter()
            .map(|xi| rbf(xi, x, self.length_scale))
            .collect();
        let mean: f64 = kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = solve_lower(&self.chol, &kstar);
        let var = (1.0 - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var.sqrt())
    }
}

fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Abramowitz–Stegun rational approximation of erf (|error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a *minimization* objective at predicted
/// `(mean, std)` against incumbent `best`.
fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 0.0 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * normal_cdf(z) + std * normal_pdf(z)
}

impl Optimizer for BayesianOpt {
    fn run_batch(
        &self,
        space: &SearchSpace,
        budget: usize,
        eval: &mut dyn BatchEval<usize>,
        rng: &mut Rng,
    ) -> SearchOutcome {
        let mut outcome = SearchOutcome::new();
        let mut observed: Vec<(Vec<usize>, Option<f64>)> = Vec::new();
        // Warmup samples are independent of each other: one batch. After
        // that the GP refits per observation, so acquisition is sequential
        // and each proposal is a singleton batch.
        let warmup: Vec<Vec<usize>> = (0..self.warmup.min(budget))
            .map(|_| space.sample(rng))
            .collect();
        let costs = eval.eval_batch(&warmup);
        for (g, c) in warmup.into_iter().zip(costs) {
            outcome.record(&g, c);
            observed.push((g, c));
        }
        while outcome.evaluations < budget {
            // Assemble the GP training window: feasible costs as-is,
            // infeasible points at a penalty above the worst feasible cost.
            let feasible: Vec<f64> = observed.iter().filter_map(|(_, c)| *c).collect();
            let penalty = if feasible.is_empty() {
                1.0
            } else {
                let worst = feasible.iter().cloned().fold(f64::MIN, f64::max);
                worst * self.infeasible_quantile + 1.0
            };
            let start = observed.len().saturating_sub(self.max_train);
            let window = &observed[start..];
            let xs: Vec<Vec<f64>> = window.iter().map(|(g, _)| space.normalize(g)).collect();
            let raw_ys: Vec<f64> = window.iter().map(|(_, c)| c.unwrap_or(penalty)).collect();
            // Standardize targets for a unit-scale GP.
            let mean_y = raw_ys.iter().sum::<f64>() / raw_ys.len() as f64;
            let std_y = (raw_ys.iter().map(|y| (y - mean_y).powi(2)).sum::<f64>()
                / raw_ys.len() as f64)
                .sqrt()
                .max(1e-9);
            let ys: Vec<f64> = raw_ys.iter().map(|y| (y - mean_y) / std_y).collect();
            let gp = Gp::fit(xs, &ys, self.length_scale, self.noise);
            let incumbent = ys.iter().cloned().fold(f64::MAX, f64::min);

            // Acquisition: best EI over random candidates plus jittered
            // copies of the incumbent best genome.
            let mut best_cand: Option<(Vec<usize>, f64)> = None;
            let base = outcome.best.as_ref().map(|(g, _)| g.clone());
            for i in 0..self.candidates {
                let cand = if i % 4 == 0 {
                    match &base {
                        Some(b) => {
                            let mut c = b.clone();
                            let idx = rng.gen_range(0..c.len());
                            let card = space.cardinality(idx) as isize;
                            let delta = rng.gen_range(-2..=2isize);
                            c[idx] = (c[idx] as isize + delta).clamp(0, card - 1) as usize;
                            c
                        }
                        None => space.sample(rng),
                    }
                } else {
                    space.sample(rng)
                };
                let (m, s) = gp.predict(&space.normalize(&cand));
                let ei = expected_improvement(m, s, incumbent);
                if best_cand.as_ref().is_none_or(|(_, b)| ei > *b) {
                    best_cand = Some((cand, ei));
                }
            }
            let (genome, _) = best_cand.expect("candidates > 0");
            let cost = eval
                .eval_batch(std::slice::from_ref(&genome))
                .pop()
                .expect("one genome in, one cost out");
            outcome.record(&genome, cost);
            observed.push((genome, cost));
        }
        outcome
    }

    fn name(&self) -> &'static str {
        "Bayes.Opt."
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-5);
    }

    #[test]
    fn gp_interpolates_training_points() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = [1.0, -1.0, 0.5];
        let gp = Gp::fit(xs.clone(), &ys, 0.3, 1e-6);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let (m, s) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs {y}");
            assert!(s < 0.1, "posterior std {s} at training point");
        }
    }

    #[test]
    fn ei_prefers_uncertain_low_mean() {
        let good = expected_improvement(-1.0, 0.5, 0.0);
        let bad = expected_improvement(1.0, 0.5, 0.0);
        assert!(good > bad);
        let sure = expected_improvement(0.0, 1e-9, 0.0);
        let unsure = expected_improvement(0.0, 1.0, 0.0);
        assert!(unsure > sure);
    }

    #[test]
    fn optimizes_quadratic_sample_efficiently() {
        let space = SearchSpace::uniform(2, 12);
        let mut rng = Rng::seed_from_u64(31);
        let outcome = BayesianOpt::default().run(
            &space,
            80,
            |g| Some(g.iter().map(|&v| (v as f64 - 6.0).powi(2)).sum()),
            &mut rng,
        );
        assert!(outcome.best_cost().unwrap() <= 2.0, "{:?}", outcome.best);
    }
}
