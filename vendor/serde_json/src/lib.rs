//! Offline stand-in for `serde_json`.
//!
//! Renders the mini-serde [`Value`] tree as JSON text and parses JSON text
//! back into it. Covers the API surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], plus a [`Value`]
//! re-export. Non-finite floats serialize as `null` (as in upstream
//! serde_json).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Lowers any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Lifts a [`Value`] tree into any deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Mirror serde_json: integral floats keep a `.0` suffix.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-' | b'+')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'-' | b'+' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = vec![(1usize, -2i64), (3, 4)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,-2],[3,4]]");
        let back: Vec<(usize, i64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u32, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""a\nbAç""#).unwrap();
        assert_eq!(s, "a\nbAç");
    }

    #[test]
    fn parses_floats_and_negatives() {
        let f: f64 = from_str("-1.5e3").unwrap();
        assert_eq!(f, -1500.0);
        let i: i64 = from_str("-42").unwrap();
        assert_eq!(i, -42);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.5 x").is_err());
    }
}
