//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of the `rand 0.8` API it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded via
//!   SplitMix64 (`seed_from_u64` matches across platforms and runs, which
//!   the seeded-determinism tests rely on).
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive ranges over
//!   the common integer and float types), and [`Rng::gen_bool`].
//!
//! The numeric streams do **not** match upstream `rand`; they only promise
//! to be deterministic, well-distributed, and stable within this repo.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type (32 bytes for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod splitmix {
    /// SplitMix64: expands a 64-bit seed into a full-entropy stream.
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        pub fn new(state: u64) -> Self {
            Self { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator, the stand-in for `rand`'s
    /// `StdRng`. Same seed ⇒ same stream, on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Exposes the raw xoshiro256\*\* state so callers can checkpoint a
        /// generator mid-stream and later rebuild it with [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// The all-zero state is a fixed point of xoshiro256\*\* and is nudged
        /// exactly as [`SeedableRng::from_seed`] does, so a round trip through
        /// `state`/`from_state` always reproduces the original stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self {
                    s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3],
                };
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Types that `Rng::gen` can produce directly from the bit stream.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the raw bit stream.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2..=2isize);
            assert!((-2..=2).contains(&y));
            let f = rng.gen_range(1e-6..1.0f32);
            assert!((1e-6..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniforms should be close to 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
