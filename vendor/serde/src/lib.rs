//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature serde: [`Serialize`] lowers a value to a JSON-like
//! [`Value`] tree, [`Deserialize`] lifts it back, and the re-exported
//! derive macros generate both impls for plain structs and enums. The
//! sibling `serde_json` crate renders/parses the tree as JSON text.
//!
//! Scope: named-field structs, tuple/unit structs, enums with unit, tuple,
//! and struct variants, and the std types the workspace serializes
//! (numbers, bool, strings, `Option`, `Vec`, slices, arrays, tuples, maps,
//! `PathBuf`, `Duration`). No `#[serde(...)]` attributes, no zero-copy.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like document tree, the interchange format between
/// [`Serialize`], [`Deserialize`], and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also carries unsigned values that fit in `i64`).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map, so serialized output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a field up in an [`Value::Object`].
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Coerces any numeric variant to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Coerces any numeric variant to `i128` (floats only when integral).
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::Int(i) => Some(i as i128),
            Value::UInt(u) => Some(u as i128),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2e38 => Some(f as i128),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("{ty}: missing field `{field}`"))
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i128().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| DeError::custom(
                    format!("{} out of range for {}", i, stringify!($t))))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let u = *self as u64;
                if u <= i64::MAX as u64 { Value::Int(u as i64) } else { Value::UInt(u) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i128().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| DeError::custom(
                    format!("{} out of range for {}", i, stringify!($t))))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| DeError::expected("number", v))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(Into::into)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = v
            .as_f64()
            .ok_or_else(|| DeError::expected("duration seconds", v))?;
        if secs.is_nan() || secs < 0.0 {
            return Err(DeError::custom("negative duration"));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($n,)+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {}-tuple, got {} items", expected, items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple (array)", other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        // HashMap iteration order is unstable; sort for reproducible output.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let round = Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
