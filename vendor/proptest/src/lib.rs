//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for integer and
//!   float ranges and for tuples of strategies;
//! * [`collection::vec`] for fixed- and range-sized vectors;
//! * [`prop_oneof!`], [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Each test runs `cases` deterministic random samples (the
//! RNG seed is fixed per process so failures reproduce), and assertion
//! failures panic with the sampled inputs available via `--nocapture`
//! backtraces. That is enough to lock in invariants; it just reports less
//! minimal counterexamples than real proptest would.

/// Deterministic test RNG (SplitMix64).
pub mod test_runner {
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed RNG so every `cargo test` run sees the same cases.
        pub fn deterministic() -> Self {
            Self {
                state: 0x5eed_c0ff_ee15_900d,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Like upstream proptest, `PROPTEST_CASES` overrides the configured
    /// case count (useful for stress runs in CI).
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous arms can be unified.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], for [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always returns a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, Union,
    };
}

/// Uniform choice among strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::deterministic();
        let s = (1u64..5, 0usize..3).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..8).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic();
        let s = prop_oneof![0usize..1, 10usize..11, 20usize..21];
        let mut seen = [false; 3];
        for _ in 0..100 {
            match s.sample(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn collection_vec_sizes() {
        let mut rng = TestRng::deterministic();
        let fixed = collection::vec(0u64..5, 6);
        assert_eq!(fixed.sample(&mut rng).len(), 6);
        let ranged = collection::vec(0u64..5, 2..5);
        for _ in 0..50 {
            let len = ranged.sample(&mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    #[test]
    fn proptest_cases_env_overrides_configured_count() {
        // Serialized within this one test to avoid races on the env var.
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::with_cases(128).cases, 7);
        assert_eq!(ProptestConfig::default().cases, 7);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::with_cases(128).cases, 128);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, strategies, and assertions wire up.
        #[test]
        fn macro_smoke(x in 1u64..100, pair in (0usize..4, 0usize..4)) {
            prop_assert!(x >= 1);
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert_eq!(x, x);
        }
    }
}
