//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal wall-clock timing harness behind the subset of the Criterion API
//! the workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples,
//! and prints `name  median  (min .. max)` per iteration. There is no
//! statistical analysis, HTML report, or baseline comparison — the goal is
//! that `cargo bench` compiles, runs, and produces honest relative numbers.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the measured closure and counts iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up: let the routine pick its iteration time scale.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~2ms per sample, capped to keep total runtime bounded.
    let iters =
        (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<50} {:>12}  ({} .. {})",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group (skipped under `--test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; timing loops
            // are pointless there, so bail out like real criterion does.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.sample_size(2)
            .bench_function("smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
