//! Offline stand-in for `serde_derive`.
//!
//! Derives the mini-serde `Serialize`/`Deserialize` traits (defined in the
//! vendored `serde` crate) for plain structs and enums. The build
//! environment has no crates.io access, so instead of `syn`/`quote` this
//! walks the raw [`proc_macro::TokenStream`] with a small hand-written
//! parser and emits the impl as formatted source text.
//!
//! Supported shapes: named-field structs, tuple structs, unit structs, and
//! enums whose variants are unit, tuple, or struct-like. Generic parameters
//! get a `Serialize`/`Deserialize` bound each. `#[serde(...)]` attributes
//! are not supported (the workspace uses none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item we are deriving for.
enum Item {
    /// `struct S { a: T, b: U }`
    Struct {
        name: String,
        generics: Vec<String>,
        fields: Vec<String>,
    },
    /// `struct S(T, U);` — `arity` counts the fields.
    TupleStruct {
        name: String,
        generics: Vec<String>,
        arity: usize,
    },
    /// `struct S;`
    UnitStruct { name: String, generics: Vec<String> },
    /// `enum E { A, B(T), C { x: T } }`
    Enum {
        name: String,
        generics: Vec<String>,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    // Skip a `where` clause if present (runs until the body or `;`).
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => i += 1,
            }
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                generics,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    generics,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name, generics },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                generics,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive supports struct/enum only, found `{other}`"),
    }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B: Bound, 'a>` into type-parameter names; consumes through
/// the closing `>`. Lifetimes and const params are skipped.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    let mut in_lifetime = false;
    let mut in_const = false;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        break;
                    }
                }
                ',' if depth == 1 => {
                    expecting_param = true;
                    in_lifetime = false;
                    in_const = false;
                }
                ':' if depth == 1 => expecting_param = false,
                '\'' if depth == 1 => in_lifetime = true,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && expecting_param => {
                let s = id.to_string();
                if s == "const" {
                    in_const = true;
                } else if in_lifetime {
                    in_lifetime = false;
                } else if !in_const {
                    params.push(s);
                    expecting_param = false;
                } else {
                    expecting_param = false;
                }
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Parses `a: T, pub b: U<V, W>` into field names, skipping types.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect `:` then skip the type up to a comma at angle-depth 0.
        debug_assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        i += 1;
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant (top-level commas).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- code generation -------------------------------------------------------

fn impl_header(trait_name: &str, name: &str, generics: &[String]) -> String {
    if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name}")
    } else {
        let bounded: Vec<String> = generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {name}<{}>",
            bounded.join(", "),
            generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "{header} {{ fn to_value(&self) -> ::serde::Value {{ \
                 ::serde::Value::Object(::std::vec![{entries}]) }} }}",
                header = impl_header("Serialize", name, generics),
                entries = entries.join(", ")
            )
        }
        Item::TupleStruct {
            name,
            generics,
            arity,
        } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|n| format!("::serde::Serialize::to_value(&self.{n})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
                header = impl_header("Serialize", name, generics)
            )
        }
        Item::UnitStruct { name, generics } => format!(
            "{header} {{ fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }} }}",
            header = impl_header("Serialize", name, generics)
        ),
        Item::Enum {
            name,
            generics,
            variants,
        } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|n| format!("__f{n}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {fields} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{entries}]))]),",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "{header} {{ fn to_value(&self) -> ::serde::Value {{ \
                 match self {{ {arms} }} }} }}",
                header = impl_header("Serialize", name, generics),
                arms = arms.join(" ")
            )
        }
    }
}

fn field_expr(ty_name: &str, field: &str) -> String {
    format!(
        "{field}: match __v.get_field(\"{field}\") {{ \
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
         ::std::option::Option::None => \
           ::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_| \
             ::serde::DeError::missing_field(\"{ty_name}\", \"{field}\"))?, }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields, .. } => {
            let inits: Vec<String> = fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity, .. } => {
            if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__v)?))"
                )
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|n| {
                        format!(
                            "::serde::Deserialize::from_value(\
                             __items.get({n}).ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}: tuple too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match __v {{ ::serde::Value::Array(__items) => \
                     ::std::result::Result::Ok({name}({inits})), \
                     __other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"{name} tuple\", __other)), }}",
                    inits = inits.join(", ")
                )
            }
        }
        Item::UnitStruct { name, .. } => {
            format!("::std::result::Result::Ok({name})")
        }
        Item::Enum { name, variants, .. } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) if *arity == 1 => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|n| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         __items.get({n}).ok_or_else(|| \
                                         ::serde::DeError::custom(\
                                         \"{name}::{vn}: tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __payload {{ \
                                 ::serde::Value::Array(__items) => \
                                 ::std::result::Result::Ok({name}::{vn}({inits})), \
                                 __other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{name}::{vn} tuple\", \
                                 __other)), }},",
                                inits = inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    field_expr(&format!("{name}::{vn}"), f)
                                        .replace("__v.get_field", "__payload.get_field")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {inits} }}),",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                   {unit_arms} \
                   __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown {name} variant `{{__other}}`\"))), }}, \
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
                   let (__tag, __payload) = &__fields[0]; \
                   match __tag.as_str() {{ \
                     {data_arms} \
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"unknown {name} variant `{{__other}}`\"))), }} }}, \
                 __other => ::std::result::Result::Err(\
                   ::serde::DeError::expected(\"{name} variant\", __other)), }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" ")
            )
        }
    };
    let (name, generics) = match item {
        Item::Struct { name, generics, .. }
        | Item::TupleStruct { name, generics, .. }
        | Item::UnitStruct { name, generics }
        | Item::Enum { name, generics, .. } => (name, generics),
    };
    format!(
        "{header} {{ fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        header = impl_header("Deserialize", name, generics)
    )
}
